package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/repro/snntest/internal/obs"
)

// Regression-sentinel defaults: the baseline is the median of up to
// checkWindow prior same-source records, a metric needs checkMinHistory
// prior observations before it can gate, and a drop beyond checkTol of
// the baseline fails the check. The tolerance absorbs machine noise —
// only the dimensionless *_x ratio metrics are gated, so the comparison
// is speedup-vs-speedup, not wall-clock-vs-wall-clock.
const (
	checkWindow     = 8
	checkMinHistory = 3
	checkTol        = 0.15
)

// checkFinding is one gated metric's verdict.
type checkFinding struct {
	Source   string
	Metric   string
	Current  float64
	Baseline float64
	History  int
	// Regressed marks current < baseline*(1-tol).
	Regressed bool
}

// checkSkip is one metric that could not be gated yet.
type checkSkip struct {
	Source  string
	Metric  string
	History int
}

// checkReport is the sentinel's full verdict over a trajectory history.
type checkReport struct {
	Findings []checkFinding
	Skipped  []checkSkip
}

// regressions returns the findings that failed the gate.
func (r checkReport) regressions() []checkFinding {
	var out []checkFinding
	for _, f := range r.Findings {
		if f.Regressed {
			out = append(out, f)
		}
	}
	return out
}

// runCheck is the benchreport -check entry point: it reads the
// cumulative trajectory file, gates every ratio metric of every
// source's latest record against its own history, prints the verdict
// table, and returns an error (nonzero exit) on any regression. A
// missing trajectory or a too-short history passes with a note — fresh
// clones and CI runs have no accumulated history to compare against.
func runCheck(w io.Writer, path string, window, minHistory int, tol float64) error {
	records, err := readTrajectory(path)
	if err != nil {
		return err
	}
	if records == nil {
		fmt.Fprintf(w, "perf check: no trajectory at %s (no history to compare; pass)\n", path)
		return nil
	}
	rep := checkTrajectory(records, window, minHistory, tol)
	writeCheckReport(w, rep, tol)
	if reg := rep.regressions(); len(reg) > 0 {
		return fmt.Errorf("perf check: %d metric(s) regressed beyond %.0f%% of baseline", len(reg), 100*tol)
	}
	return nil
}

// readTrajectory loads the trajectory array; a missing file reads as a
// nil history, any other failure (including corrupt JSON) is an error —
// a sentinel that cannot read its history must not claim a pass over it.
func readTrajectory(path string) ([]obs.TrajectoryRecord, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var records []obs.TrajectoryRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("trajectory %s is corrupt: %w", path, err)
	}
	return records, nil
}

// checkTrajectory gates every source's latest record against the median
// of its prior same-source records. Only dimensionless ratio metrics
// (names ending in "_x") participate: raw durations and counter totals
// vary with the machine, ratios only with the code.
func checkTrajectory(records []obs.TrajectoryRecord, window, minHistory int, tol float64) checkReport {
	bySource := make(map[string][]obs.TrajectoryRecord)
	var order []string
	for _, r := range records {
		if _, seen := bySource[r.Source]; !seen {
			order = append(order, r.Source)
		}
		bySource[r.Source] = append(bySource[r.Source], r)
	}
	var rep checkReport
	for _, src := range order {
		recs := bySource[src]
		latest := recs[len(recs)-1]
		prior := recs[:len(recs)-1]
		metrics := make([]string, 0, len(latest.Metrics))
		for name := range latest.Metrics {
			if strings.HasSuffix(name, "_x") {
				metrics = append(metrics, name)
			}
		}
		sort.Strings(metrics)
		for _, name := range metrics {
			var history []float64
			for _, r := range prior {
				if v, ok := r.Metrics[name]; ok {
					history = append(history, v)
				}
			}
			if len(history) > window {
				history = history[len(history)-window:]
			}
			if len(history) < minHistory {
				rep.Skipped = append(rep.Skipped, checkSkip{Source: src, Metric: name, History: len(history)})
				continue
			}
			base := median(history)
			cur := latest.Metrics[name]
			rep.Findings = append(rep.Findings, checkFinding{
				Source:    src,
				Metric:    name,
				Current:   cur,
				Baseline:  base,
				History:   len(history),
				Regressed: cur < base*(1-tol),
			})
		}
	}
	return rep
}

// median returns the median of vs (mean of the middle pair for even
// counts). vs must be non-empty; it is not mutated.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// writeCheckReport renders the verdict table.
func writeCheckReport(w io.Writer, rep checkReport, tol float64) {
	fmt.Fprintf(w, "perf check (ratio metrics vs median of prior records, tolerance %.0f%%)\n", 100*tol)
	if len(rep.Findings) == 0 && len(rep.Skipped) == 0 {
		fmt.Fprintln(w, "  no ratio metrics in trajectory; nothing to gate")
		return
	}
	for _, f := range rep.Findings {
		verdict := "ok"
		if f.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(w, "  %-16s %-32s current %7.3f  baseline %7.3f (n=%d)  %s\n",
			f.Source, f.Metric, f.Current, f.Baseline, f.History, verdict)
	}
	for _, s := range rep.Skipped {
		fmt.Fprintf(w, "  %-16s %-32s insufficient history (%d prior record(s)); skipped\n",
			s.Source, s.Metric, s.History)
	}
}
