package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/repro/snntest/internal/obs"
)

// TestRunSmoke renders Table I for one benchmark on a one-epoch training
// budget — the cheapest artifact that still exercises the pipeline build.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-bench", "nmnist", "-epochs", "1", "-table", "1",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "nmnist") {
		t.Errorf("stdout missing Table I for nmnist; got:\n%s", out)
	}
}

// TestRunOutFile checks the -out path writes the report to disk instead
// of stdout.
func TestRunOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-bench", "nmnist", "-epochs", "1", "-table", "1",
		"-out", path,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table I") {
		t.Errorf("report file missing Table I; got:\n%s", data)
	}
	if strings.Contains(stdout.String(), "Table I") {
		t.Error("table leaked to stdout despite -out")
	}
}

func TestRunBadScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "bogus"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("want unknown-scale error, got %v", err)
	}
}

func TestRunNoBenchmarks(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-bench", ",", "-table", "1"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "no benchmarks selected") {
		t.Fatalf("want no-benchmarks error, got %v", err)
	}
}

// TestRunObsManifest checks -obs: the run manifest lands next to the
// report with live counters and the run's configuration, and the run is
// appended to the cumulative trajectory history.
func TestRunObsManifest(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "BENCH_manifest.json")
	trajectory := filepath.Join(dir, "BENCH_trajectory.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-bench", "nmnist", "-epochs", "1", "-table", "1",
		"-obs", "-manifest", manifest, "-trajectory", trajectory,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	// A second run must append, not overwrite.
	args = append(args, "-out", filepath.Join(dir, "report.txt"))
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("second run: %v\nstderr:\n%s", err, stderr.String())
	}
	tdata, err := os.ReadFile(trajectory)
	if err != nil {
		t.Fatal(err)
	}
	var records []obs.TrajectoryRecord
	if err := json.Unmarshal(tdata, &records); err != nil {
		t.Fatalf("trajectory is not valid JSON: %v\n%s", err, tdata)
	}
	if len(records) != 2 {
		t.Fatalf("trajectory has %d records after two runs, want 2", len(records))
	}
	for i, r := range records {
		if r.Source != "benchreport" || r.GitRev == "" || r.Time == "" {
			t.Errorf("record %d provenance incomplete: %+v", i, r)
		}
		if r.Metrics["snn_forward_passes_total"] <= 0 {
			t.Errorf("record %d metrics dead: %v", i, r.Metrics)
		}
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, data)
	}
	if m.Config["tool"] != "benchreport" || m.Config["scale"] != "tiny" {
		t.Errorf("manifest config = %v", m.Config)
	}
	if m.GitRev == "" || m.GoVersion == "" {
		t.Errorf("manifest provenance incomplete: %+v", m)
	}
	// Table I only trains and evaluates, so the simulator counters are
	// the ones guaranteed to be live.
	if m.Counters["snn_forward_passes_total"] <= 0 || m.Counters["snn_layer_steps_total"] <= 0 {
		t.Errorf("manifest counters dead: %v", m.Counters)
	}
}

// TestRunForwardTable checks -forward renders the fused-vs-reference
// kernel timing table for the selected benchmark.
func TestRunForwardTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-bench", "shd", "-epochs", "1", "-forward",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Fused forward kernels") || !strings.Contains(out, "shd") {
		t.Errorf("stdout missing fused forward table for shd; got:\n%s", out)
	}
	if strings.Contains(out, "Table I") {
		t.Errorf("-forward alone should not render the report tables; got:\n%s", out)
	}
}
