package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/repro/snntest/internal/obs"
)

// TestRunSmoke renders Table I for one benchmark on a one-epoch training
// budget — the cheapest artifact that still exercises the pipeline build.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-bench", "nmnist", "-epochs", "1", "-table", "1",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "nmnist") {
		t.Errorf("stdout missing Table I for nmnist; got:\n%s", out)
	}
}

// TestRunOutFile checks the -out path writes the report to disk instead
// of stdout.
func TestRunOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-bench", "nmnist", "-epochs", "1", "-table", "1",
		"-out", path,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table I") {
		t.Errorf("report file missing Table I; got:\n%s", data)
	}
	if strings.Contains(stdout.String(), "Table I") {
		t.Error("table leaked to stdout despite -out")
	}
}

func TestRunBadScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "bogus"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("want unknown-scale error, got %v", err)
	}
}

func TestRunNoBenchmarks(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-bench", ",", "-table", "1"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "no benchmarks selected") {
		t.Fatalf("want no-benchmarks error, got %v", err)
	}
}

// TestRunObsManifest checks -obs: the run manifest lands next to the
// report with live counters and the run's configuration.
func TestRunObsManifest(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "BENCH_manifest.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-bench", "nmnist", "-epochs", "1", "-table", "1",
		"-obs", "-manifest", manifest,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, data)
	}
	if m.Config["tool"] != "benchreport" || m.Config["scale"] != "tiny" {
		t.Errorf("manifest config = %v", m.Config)
	}
	if m.GitRev == "" || m.GoVersion == "" {
		t.Errorf("manifest provenance incomplete: %+v", m)
	}
	// Table I only trains and evaluates, so the simulator counters are
	// the ones guaranteed to be live.
	if m.Counters["snn.forward_passes"] <= 0 || m.Counters["snn.layer_steps"] <= 0 {
		t.Errorf("manifest counters dead: %v", m.Counters)
	}
}
