package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke renders Table I for one benchmark on a one-epoch training
// budget — the cheapest artifact that still exercises the pipeline build.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-bench", "nmnist", "-epochs", "1", "-table", "1",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "nmnist") {
		t.Errorf("stdout missing Table I for nmnist; got:\n%s", out)
	}
}

// TestRunOutFile checks the -out path writes the report to disk instead
// of stdout.
func TestRunOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-bench", "nmnist", "-epochs", "1", "-table", "1",
		"-out", path,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table I") {
		t.Errorf("report file missing Table I; got:\n%s", data)
	}
	if strings.Contains(stdout.String(), "Table I") {
		t.Error("table leaked to stdout despite -out")
	}
}

func TestRunBadScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "bogus"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("want unknown-scale error, got %v", err)
	}
}

func TestRunNoBenchmarks(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-bench", ",", "-table", "1"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "no benchmarks selected") {
		t.Fatalf("want no-benchmarks error, got %v", err)
	}
}
