package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile writes content to path for fixture setup.
func writeFile(t *testing.T, path, content string) error {
	t.Helper()
	return os.WriteFile(path, []byte(content), 0o644)
}

// checkArgs runs the -check entry point through the real CLI against a
// trajectory fixture, returning stdout and the run error.
func checkArgs(t *testing.T, fixture string, extra ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := append([]string{"-check", "-trajectory", fixture}, extra...)
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

// TestCheckPass pins the healthy case: a stable ratio history gates and
// passes, and the raw (non-ratio) metrics are never gated.
func TestCheckPass(t *testing.T) {
	out, err := checkArgs(t, filepath.Join("testdata", "trajectory_pass.json"))
	if err != nil {
		t.Fatalf("stable history must pass, got: %v\n%s", err, out)
	}
	if !strings.Contains(out, "nmnist_speedup_x") || !strings.Contains(out, "ok") {
		t.Errorf("verdict table missing gated metric:\n%s", out)
	}
	if strings.Contains(out, "forward_ns_per_step") {
		t.Errorf("machine-dependent raw metric must not be gated:\n%s", out)
	}
}

// TestCheckRegression pins the acceptance criterion: an injected ≥20%
// speedup drop against fixture history exits nonzero.
func TestCheckRegression(t *testing.T) {
	out, err := checkArgs(t, filepath.Join("testdata", "trajectory_regress.json"))
	if err == nil {
		t.Fatalf("25%% speedup drop must fail the check:\n%s", out)
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error should name the regression, got: %v", err)
	}
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("verdict table should flag the regression:\n%s", out)
	}
}

// TestCheckRegressionWithinTolerance widens the tolerance past the
// injected drop and expects a pass — the gate is noise-aware, not a
// strict equality check.
func TestCheckRegressionWithinTolerance(t *testing.T) {
	out, err := checkArgs(t, filepath.Join("testdata", "trajectory_regress.json"), "-check-tol", "0.5")
	if err != nil {
		t.Fatalf("drop within tolerance must pass, got: %v\n%s", err, out)
	}
}

// TestCheckInsufficientHistory: one prior record cannot establish a
// baseline; the metric is skipped with a note and the check passes.
func TestCheckInsufficientHistory(t *testing.T) {
	out, err := checkArgs(t, filepath.Join("testdata", "trajectory_insufficient.json"))
	if err != nil {
		t.Fatalf("short history must pass, got: %v\n%s", err, out)
	}
	if !strings.Contains(out, "insufficient history") {
		t.Errorf("skip note missing:\n%s", out)
	}
	if strings.Contains(out, "REGRESSED") {
		t.Errorf("nothing may gate on one prior record:\n%s", out)
	}
}

// TestCheckMixedSources: sources gate independently — a regressing
// bench:lint ratio fails the check even though bench:forward is
// healthy, and counter-only sources contribute nothing.
func TestCheckMixedSources(t *testing.T) {
	out, err := checkArgs(t, filepath.Join("testdata", "trajectory_mixed.json"))
	if err == nil {
		t.Fatalf("regressing source must fail the mixed check:\n%s", out)
	}
	if !strings.Contains(out, "parallel_x") || !strings.Contains(out, "REGRESSED") {
		t.Errorf("bench:lint parallel_x regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "shd_speedup_x") {
		t.Errorf("healthy bench:forward metric should still be reported:\n%s", out)
	}
	if strings.Contains(out, "fault_simulated_total") {
		t.Errorf("counter-only benchreport source must not be gated:\n%s", out)
	}
	// The healthy source's row must read ok, not REGRESSED.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "shd_speedup_x") && strings.Contains(line, "REGRESSED") {
			t.Errorf("healthy metric flagged as regressed: %s", line)
		}
	}
}

// TestCheckMissingTrajectory: fresh clones and CI have no accumulated
// history; the sentinel passes with a note instead of failing the gate.
func TestCheckMissingTrajectory(t *testing.T) {
	out, err := checkArgs(t, filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing trajectory must pass, got: %v", err)
	}
	if !strings.Contains(out, "no trajectory") {
		t.Errorf("missing-history note absent:\n%s", out)
	}
}

// TestCheckCorruptTrajectory: an unreadable history is an error — the
// sentinel must not report a pass over data it could not read.
func TestCheckCorruptTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")
	if err := writeFile(t, path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := checkArgs(t, path); err == nil {
		t.Fatal("corrupt trajectory must fail the check")
	}
}
