#!/bin/sh
# verify.sh — the full verification gate for this repo.
#
# Tier 1 (build + vet) must always pass; the snnlint suite enforces the
# repo-specific invariants (see internal/lint and README.md), and the
# race run exercises the campaign worker pools, the multi-restart
# generation engine, and the tensor/autograd concurrency contracts. Any
# non-zero exit fails the gate.
set -eu
cd "$(dirname "$0")"

go build ./...
go vet ./...
go run ./cmd/snnlint ./...
go test -race ./...
# Gradient gate: finite-difference checks of every autograd op plus the
# AST audit that fails when an op lacks a gradcheck case.
go test -run GradCheck ./internal/autograd/
# Determinism/equivalence gate: the Equiv tests pin (a) the incremental
# golden-trace-replay campaign to the full re-simulation reference and
# (b) the parallel multi-restart generator to its serial output —
# worker-count invariance, Restarts=1 legacy equivalence, and the
# seed-pinned Generate→Compact→fault-classification pipeline golden —
# and must survive repeated runs bit-identically.
go test -run Equiv -count=2 ./...
# Observability gate: the obs layer must be race-clean (spans and
# counters are hit from every campaign/generation worker), and the
# quickstart trace tests assert that a -trace run emits parseable JSONL
# covering calibrate → generate → compact → campaign with counters that
# reconcile against the printed results, while leaving stdout
# byte-identical to a dark run.
go test -race ./internal/obs/
go test -run 'TestRunTrace' ./examples/quickstart/

echo "verify.sh: all gates passed"
