#!/bin/sh
# verify.sh — the full verification gate for this repo.
#
# Tier 1 (build + vet) must always pass; the snnlint suite enforces the
# repo-specific invariants (see internal/lint and README.md), and the
# race run exercises the campaign worker pools and the tensor
# concurrency contract. Any non-zero exit fails the gate.
set -eu
cd "$(dirname "$0")"

go build ./...
go vet ./...
go run ./cmd/snnlint ./...
go test -race ./...
# Determinism/equivalence gate: the Equiv tests pin the incremental
# golden-trace-replay campaign to the full re-simulation reference and
# must survive repeated runs bit-identically.
go test -run Equiv -count=2 ./...

echo "verify.sh: all gates passed"
