#!/bin/sh
# verify.sh — the full verification gate for this repo.
#
# Tier 1 (build + vet) must always pass; the snnlint suite enforces the
# repo-specific invariants (see internal/lint and README.md), and the
# race run exercises the campaign worker pools, the multi-restart
# generation engine, and the tensor/autograd concurrency contracts. Any
# non-zero exit fails the gate.
set -eu
cd "$(dirname "$0")"

go build ./...
go vet ./...
# The incremental driver caches per-package results keyed by content
# hash: repeat verify runs skip re-analyzing unchanged packages.
go run ./cmd/snnlint -cache .snnlint-cache.json ./...
go test -race ./...
# Gradient gate: finite-difference checks of every autograd op plus the
# AST audit that fails when an op lacks a gradcheck case.
go test -run GradCheck ./internal/autograd/
# Determinism/equivalence gate: the Equiv tests pin (a) the incremental
# golden-trace-replay campaign to the full re-simulation reference and
# (b) the parallel multi-restart generator to its serial output —
# worker-count invariance, Restarts=1 legacy equivalence, and the
# seed-pinned Generate→Compact→fault-classification pipeline golden —
# and must survive repeated runs bit-identically.
go test -run Equiv -count=2 ./...
# Kernel gate: the fused forward path must stay allocation-free across a
# whole Run/RunFrom pass (the AllocsPerRun tests fail on any regression),
# and the stale-scratch geometry guard plus the healthy-layer fast loop
# must keep rejecting/bit-matching as documented. The fused-vs-reference
# equivalence suite itself already runs under the Equiv gate above.
go test -run 'ZeroAlloc|TestScratch|TestStepLayer' ./internal/snn/
# Observability gate: the obs layer must be race-clean (spans and
# counters are hit from every campaign/generation worker), and the
# quickstart trace tests assert that a -trace run emits parseable JSONL
# covering calibrate → generate → compact → campaign with counters that
# reconcile against the printed results, while leaving stdout
# byte-identical to a dark run.
go test -race ./internal/obs/
go test -run 'TestRunTrace' ./examples/quickstart/
# Telemetry gate: the live server's exposition format, /runs tracking
# and lifecycle must be race-clean, and an interrupted quickstart must
# still flush a complete trace (graceful SIGINT shutdown).
go test -race ./internal/obs/telemetry/
go test -run 'TestSigintFlushesTrace' ./examples/quickstart/
# Perf-regression sentinel: gate the latest trajectory record's ratio
# metrics against the median of prior same-source records. A missing
# BENCH_trajectory.json (fresh clone, CI) passes with a note; an actual
# ≥15% ratio regression exits nonzero and fails the gate. The -check
# fixtures under cmd/benchreport/testdata pin both behaviours.
go run ./cmd/benchreport -check
# Profile attribution gate, two phases. Phase 1: a full tiny snntestgen
# run with -profile-dir captures a phase-labelled CPU profile (and must
# not perturb the pipeline — the dark-identity test above pins that).
# Phase 2: benchreport -profile folds the capture by phase label and
# gates it: ≥95% of CPU samples must carry a phase label, and ≥80% of
# the generate subtree's CPU must sit inside the stepLayer/kernel
# phases (restart growth, stage-2 extension, calibration) — CPU leaking
# into bookkeeping spans fails the gate. Emits BENCH_profile.json.
go build -o /tmp/snntest-gen ./cmd/snntestgen
rm -rf .profile-smoke
/tmp/snntest-gen -bench nmnist -scale tiny -profile-dir .profile-smoke -quiet
go run ./cmd/benchreport -profile .profile-smoke/snntestgen.cpu.pprof \
    -profile-out BENCH_profile.json -profile-min-labeled 0.95 -profile-kernel-min 0.80
rm -f /tmp/snntest-gen
# Live-serve + flight-recorder gate, two phases. Phase 1: a quickstart
# run with -ledger journals its campaigns under .ledger-smoke. Phase 2:
# a second process with -serve + the same -ledger rehydrates those
# journals into /runs history (restart survival), and the gate scrapes
# /metrics, /healthz, and a rehydrated run's coverage curve, checking
# the curve is monotone nondecreasing and ends at detected/total.
if command -v curl >/dev/null 2>&1; then
    go build -o /tmp/snntest-quickstart ./examples/quickstart
    rm -rf .ledger-smoke
    /tmp/snntest-quickstart -ledger .ledger-smoke >/dev/null 2>&1
    ls .ledger-smoke/*.jsonl >/dev/null 2>&1 || { echo "verify.sh: -ledger run wrote no journals" >&2; exit 1; }
    # Not -quiet: the gate parses the "listening on" stderr line for the
    # resolved ephemeral port.
    /tmp/snntest-quickstart -serve 127.0.0.1:0 -ledger .ledger-smoke >/dev/null 2>/tmp/snntest-serve.log &
    QS_PID=$!
    ADDR=""
    for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
        ADDR=$(sed -n 's#.*telemetry server listening on http://\([^ ]*\).*#\1#p' /tmp/snntest-serve.log)
        [ -n "$ADDR" ] && break
        sleep 0.2
    done
    [ -n "$ADDR" ] || { echo "verify.sh: telemetry server never announced its address" >&2; kill "$QS_PID" 2>/dev/null; exit 1; }
    curl -fsS "http://$ADDR/healthz" >/dev/null
    # Buffer the scrape before grepping: -q closing the pipe mid-body
    # makes curl report a write error now that the runtime gauges have
    # grown the exposition past one pipe buffer.
    curl -fsS "http://$ADDR/metrics" >/tmp/snntest-metrics.txt
    grep -q '^# TYPE snn_forward_passes_total counter$' /tmp/snntest-metrics.txt
    # The per-scrape runtime sampler must populate its gauges live.
    grep -q '^# TYPE runtime_goroutines_count gauge$' /tmp/snntest-metrics.txt
    rm -f /tmp/snntest-metrics.txt
    # Phase 1's campaign journals must be visible as rehydrated history,
    # and the run's coverage curve must be monotone nondecreasing.
    RUN_ID=$(basename "$(ls .ledger-smoke/campaign-*.jsonl | head -n 1)" .jsonl)
    curl -fsS "http://$ADDR/runs" | grep -q "\"$RUN_ID\"" || { echo "verify.sh: rehydrated run $RUN_ID missing from /runs" >&2; kill "$QS_PID" 2>/dev/null; exit 1; }
    # The endpoint pretty-prints; flatten to one line before parsing.
    curl -fsS "http://$ADDR/runs/$RUN_ID/coverage" | tr -d ' \n\t' >/tmp/snntest-coverage.json
    FINAL=$(sed -n 's/.*"detected":\([0-9][0-9]*\),"steps".*/\1/p' /tmp/snntest-coverage.json)
    sed -n 's/.*"points":\[\([^]]*\)\].*/\1/p' /tmp/snntest-coverage.json | tr '{' '\n' |
        sed -n 's/.*"detected":\([0-9][0-9]*\).*/\1/p' | awk -v final="$FINAL" '
        NR > 1 && $1 < prev { print "coverage curve not monotone: " $1 " after " prev; exit 1 }
        { prev = $1 }
        END {
            # A campaign that detected nothing legitimately has no curve
            # points; otherwise the endpoint must equal detected/total.
            if (NR == 0 && final != 0) { print "coverage curve empty with " final " detections"; exit 1 }
            if (NR > 0 && prev != final) { print "curve endpoint " prev " != campaign detected " final; exit 1 }
        }
    ' || { echo "verify.sh: /runs/$RUN_ID/coverage failed the monotone gate" >&2; kill "$QS_PID" 2>/dev/null; exit 1; }
    wait "$QS_PID"
    rm -f /tmp/snntest-quickstart /tmp/snntest-serve.log /tmp/snntest-coverage.json
else
    echo "verify.sh: curl not found; skipping the live-serve scrape gate" >&2
fi

echo "verify.sh: all gates passed"
