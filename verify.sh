#!/bin/sh
# verify.sh — the full verification gate for this repo.
#
# Tier 1 (build + vet) must always pass; the snnlint suite enforces the
# repo-specific invariants (see internal/lint and README.md), and the
# race run exercises the campaign worker pools, the multi-restart
# generation engine, and the tensor/autograd concurrency contracts. Any
# non-zero exit fails the gate.
set -eu
cd "$(dirname "$0")"

go build ./...
go vet ./...
# The incremental driver caches per-package results keyed by content
# hash: repeat verify runs skip re-analyzing unchanged packages.
go run ./cmd/snnlint -cache .snnlint-cache.json ./...
go test -race ./...
# Gradient gate: finite-difference checks of every autograd op plus the
# AST audit that fails when an op lacks a gradcheck case.
go test -run GradCheck ./internal/autograd/
# Determinism/equivalence gate: the Equiv tests pin (a) the incremental
# golden-trace-replay campaign to the full re-simulation reference and
# (b) the parallel multi-restart generator to its serial output —
# worker-count invariance, Restarts=1 legacy equivalence, and the
# seed-pinned Generate→Compact→fault-classification pipeline golden —
# and must survive repeated runs bit-identically.
go test -run Equiv -count=2 ./...
# Kernel gate: the fused forward path must stay allocation-free across a
# whole Run/RunFrom pass (the AllocsPerRun tests fail on any regression),
# and the stale-scratch geometry guard plus the healthy-layer fast loop
# must keep rejecting/bit-matching as documented. The fused-vs-reference
# equivalence suite itself already runs under the Equiv gate above.
go test -run 'ZeroAlloc|TestScratch|TestStepLayer' ./internal/snn/
# Observability gate: the obs layer must be race-clean (spans and
# counters are hit from every campaign/generation worker), and the
# quickstart trace tests assert that a -trace run emits parseable JSONL
# covering calibrate → generate → compact → campaign with counters that
# reconcile against the printed results, while leaving stdout
# byte-identical to a dark run.
go test -race ./internal/obs/
go test -run 'TestRunTrace' ./examples/quickstart/
# Telemetry gate: the live server's exposition format, /runs tracking
# and lifecycle must be race-clean, and an interrupted quickstart must
# still flush a complete trace (graceful SIGINT shutdown).
go test -race ./internal/obs/telemetry/
go test -run 'TestSigintFlushesTrace' ./examples/quickstart/
# Live-serve gate: start the quickstart with -serve on an ephemeral
# port and scrape /metrics and /healthz while the run is in flight.
if command -v curl >/dev/null 2>&1; then
    go build -o /tmp/snntest-quickstart ./examples/quickstart
    # Not -quiet: the gate parses the "listening on" stderr line for the
    # resolved ephemeral port.
    /tmp/snntest-quickstart -serve 127.0.0.1:0 >/dev/null 2>/tmp/snntest-serve.log &
    QS_PID=$!
    ADDR=""
    for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
        ADDR=$(sed -n 's#.*telemetry server listening on http://\([^ ]*\).*#\1#p' /tmp/snntest-serve.log)
        [ -n "$ADDR" ] && break
        sleep 0.2
    done
    [ -n "$ADDR" ] || { echo "verify.sh: telemetry server never announced its address" >&2; kill "$QS_PID" 2>/dev/null; exit 1; }
    curl -fsS "http://$ADDR/healthz" >/dev/null
    curl -fsS "http://$ADDR/metrics" | grep -q '^# TYPE snn_forward_passes_total counter$'
    wait "$QS_PID"
    rm -f /tmp/snntest-quickstart /tmp/snntest-serve.log
else
    echo "verify.sh: curl not found; skipping the live-serve scrape gate" >&2
fi

echo "verify.sh: all gates passed"
