module github.com/repro/snntest

go 1.22
